"""Quickstart: certify transactions with the reconfigurable TCS.

Builds a two-shard cluster with f + 1 = 2 replicas per shard, runs a few
transactions through a transactional key-value store, crashes a replica,
reconfigures the affected shard and keeps going — then validates the whole
history against the TCS specification.

Run with:  python examples/quickstart.py
"""

from repro import Cluster, TransactionalStore


def main() -> None:
    cluster = Cluster(num_shards=2, replicas_per_shard=2, seed=1)
    store = TransactionalStore(cluster, initial={"x": 0, "y": 0})

    print("== failure-free operation ==")
    for i in range(3):
        outcome = store.transact(lambda ctx: ctx.increment("x"))
        print(f"  txn {outcome.txn}: {outcome.decision.value}, x = {store.read('x')}")

    print("\n== two conflicting transactions: exactly one commits ==")
    outcomes = store.run_batch(
        [lambda ctx: ctx.write("y", "from-first"), lambda ctx: ctx.write("y", "from-second")]
    )
    for outcome in outcomes:
        print(f"  txn {outcome.txn}: {outcome.decision.value}")
    print(f"  y = {store.read('y')!r}")

    print("\n== crash a follower and reconfigure (f + 1 replicas, external CS) ==")
    crashed = cluster.crash_follower("shard-0")
    cluster.reconfigure("shard-0", suspects=[crashed])
    config = cluster.current_configuration("shard-0")
    print(f"  crashed {crashed}; shard-0 now at epoch {config.epoch} with members {config.members}")

    outcome = store.transact(lambda ctx: ctx.increment("x"))
    print(f"  post-reconfiguration txn: {outcome.decision.value}, x = {store.read('x')}")

    print("\n== validate the execution against the TCS specification ==")
    result, violations = cluster.check()
    print(f"  history correct: {result.ok}; invariant violations: {len(violations)}")
    print(f"  decision latency (message delays): {sorted(set(cluster.protocol_latencies()))}")


if __name__ == "__main__":
    main()
