"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's quantitative claims (see
DESIGN.md section 5 and EXPERIMENTS.md) and prints an ``ExperimentReport``
table with the paper-predicted value next to the measured one.
"""

from __future__ import annotations

from typing import List

from repro.core.serializability import TransactionPayload


def single_shard_payloads(cluster, count: int, prefix: str = "k") -> List[TransactionPayload]:
    """Independent single-shard read/write payloads."""
    return [
        TransactionPayload.make(
            reads=[(f"{prefix}{i}", (0, ""))],
            writes=[(f"{prefix}{i}", i)],
            tiebreak=f"{prefix}{i}",
        )
        for i in range(count)
    ]


def key_on_shard(cluster, shard: str, hint: str = "key") -> str:
    for i in range(10_000):
        candidate = f"{hint}-{i}"
        if cluster.scheme.sharding.shard_of(candidate) == shard:
            return candidate
    raise RuntimeError(f"no key found for shard {shard}")


def multi_shard_payload(cluster, shards, tiebreak: str = "m") -> TransactionPayload:
    keys = [key_on_shard(cluster, shard, hint=f"{tiebreak}-{shard}") for shard in shards]
    return TransactionPayload.make(
        reads=[(key, (0, "")) for key in keys],
        writes=[(key, 1) for key in keys],
        tiebreak=tiebreak,
    )
