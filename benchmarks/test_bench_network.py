"""Perf guard for the bandwidth/queueing network model and pipelined commit.

Everything here is measured in *virtual* time, so the guards are exact —
the simulation is seeded and the scenario engine is deterministic, so any
regression in the link model, the wire-size accounting or the pipelining
path fails these assertions regardless of machine speed.

* **Knee curve**: sweeping batch size over the ``bandwidth-knee`` scenario
  (1000 bytes/delay links, 0.4-delay per-message overhead) must trace a
  *non-monotone* curve: tiny batches drown in per-message overhead, huge
  batches head-of-line-block the FIFO links behind their own serialized
  bytes, and both throughput and mean latency have an interior optimum at
  the knee in between.

* **Pipelining**: at the knee, the pipelined commit path (PREPARE of batch
  N+1 overlapped with ACCEPT persistence of batch N — the default) must
  sustain >= 1.3x the virtual-time committed-txns throughput of the
  stop-and-wait baseline (``network.pipeline=False``).  Measured ~4.7x on
  the library scenario, so the floor has wide headroom.

The measurements are emitted as ``BENCH_network.json`` for the CI artifact
trail: the full knee curve plus the pipelining comparison.
"""

from dataclasses import replace

from repro.scenarios import BatchSpec, ScenarioRunner, get_scenario

from _helpers import write_bench_artifact


# Batch sizes traced across the knee.  0 = batching off; the library
# scenario's knee sits at size 4 under its 1000 bytes/delay + 0.4 overhead
# link, with 50-transaction submission waves.
BATCH_GRID = (0, 2, 4, 8, 16, 50)
KNEE = 4

PIPELINE_SPEEDUP_FLOOR = 1.3

_artifact = {}


def _run(batch_size, pipeline=True):
    base = get_scenario("bandwidth-knee")
    overrides = {
        "batch": BatchSpec(size=batch_size) if batch_size else BatchSpec(),
    }
    if not pipeline:
        overrides["network"] = replace(base.network, pipeline=False)
    return ScenarioRunner(base.with_overrides(**overrides)).run()


def test_bandwidth_knee_curve_is_non_monotone(benchmark):
    def run_grid():
        return {size: _run(size) for size in BATCH_GRID}

    results = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    for size, result in results.items():
        assert result.passed and result.undecided == 0, (size, result.check_reason)
    curve = [
        {
            "batch_size": size,
            "throughput": r.throughput,
            "mean_latency": r.latency.mean,
            "p99_latency": r.latency.p99,
            "messages_sent": r.messages_sent,
            "bytes_sent": r.bytes_sent,
            "link_queue_wait_mean": r.link_queue_wait_mean,
            "link_queue_wait_max": r.link_queue_wait_max,
            "link_busy_time": r.link_busy_time,
        }
        for size, r in results.items()
    ]
    print("\nbandwidth knee curve (bw=1000, ovh=0.4):")
    for row in curve:
        print(
            f"  batch={row['batch_size']:3d} tput={row['throughput']:7.1f} "
            f"lat mean={row['mean_latency']:6.2f} q wait max="
            f"{row['link_queue_wait_max']:5.2f}"
        )

    unbatched, knee, saturated = results[0], results[KNEE], results[BATCH_GRID[-1]]
    # The knee is a real interior optimum, in both directions: the curve is
    # non-monotone, so "batch as much as possible" is NOT the right policy
    # on a constrained link.
    assert knee.throughput > unbatched.throughput
    assert knee.throughput > saturated.throughput
    assert knee.latency.mean < unbatched.latency.mean
    assert knee.latency.mean < saturated.latency.mean
    # The two failure modes bracketing the knee look the way queueing
    # theory says they should: the unbatched side queues on per-message
    # overhead (many messages, deep queue waits), the saturated side ships
    # far fewer messages but each one blocks the link for longer.
    assert unbatched.messages_sent > 3 * saturated.messages_sent
    assert unbatched.link_queue_wait_max > saturated.link_queue_wait_max
    assert all(r.bytes_sent > 0 for r in results.values())

    _artifact["knee_curve"] = {
        "scenario": "bandwidth-knee",
        "knee_batch_size": KNEE,
        "curve": curve,
    }
    write_bench_artifact("network", _artifact)


def test_pipelined_commit_speedup_at_the_knee(benchmark):
    def run_pair():
        pipelined = _run(KNEE, pipeline=True)
        stop_and_wait = _run(KNEE, pipeline=False)
        return pipelined, stop_and_wait

    pipelined, stop_and_wait = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    for label, result in (("pipelined", pipelined), ("stop-and-wait", stop_and_wait)):
        assert result.passed and result.undecided == 0, (label, result.check_reason)
    speedup = pipelined.throughput / stop_and_wait.throughput
    print(
        f"\npipelining guard: stop-and-wait {stop_and_wait.throughput:.1f} "
        f"txns/1k delays, pipelined {pipelined.throughput:.1f} -> "
        f"{speedup:.2f}x (floor {PIPELINE_SPEEDUP_FLOOR}x, virtual time)"
    )
    # Both baselines decide the same transaction population.
    assert (
        pipelined.committed + pipelined.aborted
        == stop_and_wait.committed + stop_and_wait.aborted
    )
    _artifact["pipelining"] = {
        "scenario": "bandwidth-knee",
        "batch_size": KNEE,
        "pipelined_throughput": pipelined.throughput,
        "stop_and_wait_throughput": stop_and_wait.throughput,
        "speedup": speedup,
        "floor": PIPELINE_SPEEDUP_FLOOR,
    }
    write_bench_artifact("network", _artifact)
    assert speedup >= PIPELINE_SPEEDUP_FLOOR
