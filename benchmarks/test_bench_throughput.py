"""E8 — Throughput scaling with shards and multi-shard transaction fraction.

Paper motivation (Section 1): sharding is what provides scalability, and the
TCS must coordinate across shards only for the transactions that span them.
We measure committed transactions per 1000 virtual time units as the number
of shards grows, and how throughput degrades as the fraction of multi-shard
transactions rises.
"""

import pytest

from repro.analysis.metrics import ExperimentReport
from repro.cluster import Cluster
from repro.core.serializability import TransactionPayload

from conftest import key_on_shard


TXNS_PER_ROUND = 24


def _payloads(cluster, multi_shard_fraction: float):
    payloads = []
    shards = cluster.shards
    multi_every = int(1 / multi_shard_fraction) if multi_shard_fraction > 0 else 0
    for i in range(TXNS_PER_ROUND):
        if multi_every and i % multi_every == 0 and len(shards) > 1:
            first, second = shards[i % len(shards)], shards[(i + 1) % len(shards)]
            keys = [
                key_on_shard(cluster, first, hint=f"m{i}a"),
                key_on_shard(cluster, second, hint=f"m{i}b"),
            ]
        else:
            keys = [key_on_shard(cluster, shards[i % len(shards)], hint=f"s{i}")]
        payloads.append(
            TransactionPayload.make(
                reads=[(key, (0, "")) for key in keys],
                writes=[(key, i) for key in keys],
                tiebreak=f"t{i}",
            )
        )
    return payloads


def _throughput(num_shards: int, multi_shard_fraction: float) -> float:
    cluster = Cluster(num_shards=num_shards, replicas_per_shard=2, seed=8)
    payloads = _payloads(cluster, multi_shard_fraction)
    start = cluster.scheduler.now
    decisions = cluster.certify_many(payloads)
    elapsed = max(cluster.scheduler.now - start, 1e-9)
    committed = sum(1 for d in decisions.values() if d.value == "commit")
    result, violations = cluster.check()
    assert result.ok and violations == []
    return committed / elapsed * 1000.0


@pytest.mark.parametrize("num_shards", [1, 2, 4, 8])
def test_e8_throughput_vs_shards(benchmark, num_shards):
    throughput = benchmark.pedantic(lambda: _throughput(num_shards, 0.0), rounds=1, iterations=1)
    report = ExperimentReport(
        experiment=f"E8 — throughput with {num_shards} shard(s)",
        claim="independent shards process disjoint transactions in parallel",
        headers=["shards", "committed txns / 1000 delays"],
    )
    report.add_row(num_shards, throughput)
    report.print()
    assert throughput > 0


def test_e8_throughput_vs_multi_shard_fraction(benchmark):
    fractions = [0.0, 0.25, 0.5, 1.0]
    results = benchmark.pedantic(
        lambda: {fraction: _throughput(4, fraction) for fraction in fractions},
        rounds=1,
        iterations=1,
    )
    report = ExperimentReport(
        experiment="E8 — throughput vs multi-shard transaction fraction (4 shards)",
        claim="cross-shard transactions add coordination and reduce throughput",
        headers=["multi-shard fraction", "committed txns / 1000 delays"],
    )
    for fraction, throughput in results.items():
        report.add_row(fraction, throughput)
    report.print()
    assert results[0.0] >= results[1.0] * 0.8  # same or better without cross-shard txns


def test_e8_scalability_shape(benchmark):
    def sweep():
        return {n: _throughput(n, 0.0) for n in (1, 4)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report = ExperimentReport(
        experiment="E8 — scalability shape",
        claim="more shards -> more parallel certification",
        headers=["shards", "committed txns / 1000 delays"],
    )
    for shards, throughput in results.items():
        report.add_row(shards, throughput)
    report.print()
    assert results[4] >= results[1]
