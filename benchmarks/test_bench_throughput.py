"""E8 — Throughput scaling with shards and multi-shard transactions.

Paper motivation (Section 1): sharding is what provides scalability, and the
TCS must coordinate across shards only for the transactions that span them.
We measure committed transactions per 1000 virtual time units as the number
of shards grows (single-key transactions), and compare against an all-
multi-shard workload on the same cluster, all through the scenario engine.
"""

import pytest

from repro.analysis.metrics import ExperimentReport
from repro.scenarios import ScenarioSpec, WorkloadSpec, run_scenario


TXNS = 24


def _single_shard_spec(num_shards: int) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"e8-throughput-{num_shards}-shards",
        protocol="message-passing",
        num_shards=num_shards,
        seed=8,
        workload=WorkloadSpec(
            kind="uniform", txns=TXNS, batch=TXNS, num_keys=512,
            reads_per_txn=1, writes_per_txn=1,
        ),
    )


def _spanning_spec(num_shards: int) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"e8-throughput-spanning-{num_shards}-shards",
        protocol="message-passing",
        num_shards=num_shards,
        seed=8,
        workload=WorkloadSpec(kind="spanning", txns=TXNS, batch=TXNS),
    )


def _throughput(spec: ScenarioSpec) -> float:
    result = run_scenario(spec)
    assert result.passed
    return result.throughput


@pytest.mark.parametrize("num_shards", [1, 2, 4, 8])
def test_e8_throughput_vs_shards(benchmark, num_shards):
    throughput = benchmark.pedantic(
        lambda: _throughput(_single_shard_spec(num_shards)), rounds=1, iterations=1
    )
    report = ExperimentReport(
        experiment=f"E8 — throughput with {num_shards} shard(s)",
        claim="independent shards process disjoint transactions in parallel",
        headers=["shards", "committed txns / 1000 delays"],
    )
    report.add_row(num_shards, throughput)
    report.print()
    assert throughput > 0


def test_e8_throughput_single_vs_multi_shard(benchmark):
    single, spanning = benchmark.pedantic(
        lambda: (_throughput(_single_shard_spec(4)), _throughput(_spanning_spec(4))),
        rounds=1,
        iterations=1,
    )
    report = ExperimentReport(
        experiment="E8 — single-shard vs all-multi-shard workload (4 shards)",
        claim="cross-shard transactions add coordination and reduce throughput",
        headers=["workload", "committed txns / 1000 delays"],
    )
    report.add_row("single-shard only", single)
    report.add_row("every txn spans two shards", spanning)
    report.print()
    assert single >= spanning * 0.8  # same or better without cross-shard txns


def test_e8_scalability_shape(benchmark):
    results = benchmark.pedantic(
        lambda: {n: _throughput(_single_shard_spec(n)) for n in (1, 4)},
        rounds=1,
        iterations=1,
    )
    report = ExperimentReport(
        experiment="E8 — scalability shape",
        claim="more shards -> more parallel certification",
        headers=["shards", "committed txns / 1000 delays"],
    )
    for shards, throughput in results.items():
        report.add_row(shards, throughput)
    report.print()
    assert results[4] >= results[1]
