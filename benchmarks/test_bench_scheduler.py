"""Micro-benchmark guard for the simulation core.

Regenerates a 10k-transaction steady-state scenario and asserts the engine
beats a recorded pre-refactor floor, so hot-path regressions (the scheduler,
the network delivery path, leader-side vote computation, decision watchers)
fail loudly instead of silently rotting.

Floor provenance: before the simulation-core refactor (O(n) ``idle`` scans,
per-event full-history ``run_until_decided`` predicates, per-PREPARE
certification-order scans) this exact workload measured ~235 txns/sec and
~2,950 events/sec on the development container; afterwards ~4,200 txns/sec
and ~46,000 events/sec.  The guard asserts 2x the pre-refactor floor, which
leaves roomy headroom for slower CI machines while still catching any
return of a quadratic hot path.
"""

import time

from repro.scenarios import ScenarioRunner, ScenarioSpec, WorkloadSpec

from _helpers import (
    PRE_REFACTOR_EVENTS_PER_SEC,
    PRE_REFACTOR_TXNS_PER_SEC,
    write_bench_artifact,
)


TXNS = 10_000


def _spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="scheduler-guard-steady-state",
        protocol="message-passing",
        num_shards=4,
        seed=0,
        workload=WorkloadSpec(kind="uniform", txns=TXNS, batch=50, num_keys=2000),
        # This guard times the engine, not the checker (the online checker
        # has its own floor in test_bench_checker.py).  Contradiction
        # detection stays on.
        check_mode="off",
    )


def test_scheduler_throughput_guard(benchmark):
    def run():
        runner = ScenarioRunner(_spec())
        start = time.perf_counter()
        result = runner.run()
        wall = time.perf_counter() - start
        return result, wall

    result, wall = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.passed
    assert result.txns_submitted == TXNS
    txns_per_sec = TXNS / wall
    events_per_sec = result.events_fired / wall
    print(
        f"\nscheduler guard: {TXNS} txns in {wall:.2f}s -> "
        f"{txns_per_sec:,.0f} txns/sec, {events_per_sec:,.0f} events/sec "
        f"(pre-refactor floor: {PRE_REFACTOR_TXNS_PER_SEC:,.0f} / "
        f"{PRE_REFACTOR_EVENTS_PER_SEC:,.0f})"
    )
    write_bench_artifact(
        "scheduler",
        {
            "txns": TXNS,
            "wall_seconds": wall,
            "txns_per_sec": txns_per_sec,
            "events_per_sec": events_per_sec,
            "floor_txns_per_sec": 2 * PRE_REFACTOR_TXNS_PER_SEC,
            "floor_events_per_sec": 2 * PRE_REFACTOR_EVENTS_PER_SEC,
        },
    )
    assert txns_per_sec >= 2 * PRE_REFACTOR_TXNS_PER_SEC
    assert events_per_sec >= 2 * PRE_REFACTOR_EVENTS_PER_SEC
