"""Micro-benchmark guard for the simulation core.

Regenerates a 10k-transaction steady-state scenario and asserts the engine
beats a recorded pre-refactor floor, so hot-path regressions (the scheduler,
the network delivery path, leader-side vote computation, decision watchers)
fail loudly instead of silently rotting.

Floor provenance: this exact workload measures ~3,000-4,200 txns/sec and
~32,000-45,000 events/sec on the development container (2026-08 baseline;
see ``_helpers.py`` for the measured constants and the re-baselining rule).
The guard asserts half the worst measured baseline, which leaves headroom
for slower CI machines while still catching any return of a quadratic hot
path — the pre-refactor engine, at ~235 txns/sec, missed the current floor
by ~6x.
"""

import time

from repro.scenarios import ScenarioRunner, ScenarioSpec, WorkloadSpec

from _helpers import (
    ENGINE_EVENTS_FLOOR,
    ENGINE_TXNS_FLOOR,
    write_bench_artifact,
)


TXNS = 10_000


def _spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="scheduler-guard-steady-state",
        protocol="message-passing",
        num_shards=4,
        seed=0,
        workload=WorkloadSpec(kind="uniform", txns=TXNS, batch=50, num_keys=2000),
        # This guard times the engine, not the checker (the online checker
        # has its own floor in test_bench_checker.py).  Contradiction
        # detection stays on.
        check_mode="off",
    )


def test_scheduler_throughput_guard(benchmark):
    def run():
        runner = ScenarioRunner(_spec())
        start = time.perf_counter()
        result = runner.run()
        wall = time.perf_counter() - start
        return result, wall

    result, wall = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.passed
    assert result.txns_submitted == TXNS
    txns_per_sec = TXNS / wall
    events_per_sec = result.events_fired / wall
    print(
        f"\nscheduler guard: {TXNS} txns in {wall:.2f}s -> "
        f"{txns_per_sec:,.0f} txns/sec, {events_per_sec:,.0f} events/sec "
        f"(floor: {ENGINE_TXNS_FLOOR:,.0f} / {ENGINE_EVENTS_FLOOR:,.0f})"
    )
    write_bench_artifact(
        "scheduler",
        {
            "txns": TXNS,
            "wall_seconds": wall,
            "txns_per_sec": txns_per_sec,
            "events_per_sec": events_per_sec,
            "floor_txns_per_sec": ENGINE_TXNS_FLOOR,
            "floor_events_per_sec": ENGINE_EVENTS_FLOOR,
        },
    )
    assert txns_per_sec >= ENGINE_TXNS_FLOOR
    assert events_per_sec >= ENGINE_EVENTS_FLOOR
