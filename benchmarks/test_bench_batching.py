"""Perf guard for the protocol-level batching pipeline.

Two layers of protection:

* **Deterministic**: on the scenario engine's steady-state workload,
  batching at size 32 must cut messages sent by >= 4x and events fired by
  >= 3x while deciding every transaction with the online checker attached,
  and — under the adaptive policy — without adding a single message delay
  of client latency.  These assertions are exact (the simulation is
  seeded), so any regression in the batching layer fails regardless of
  machine speed.

* **Wall-clock**: on a saturated cross-shard workload driven directly
  through the cluster (no store execution diluting the measurement),
  batched certification must sustain >= 2x the unbatched steady-state
  txns/s, with the online checker enabled on both sides.  Measured ~2.3x
  on the development container (interleaved best-of runs with the
  collector paused keep the ratio stable against noisy neighbours).

Both guards emit their measurements as ``BENCH_batching.json`` for the CI
artifact trail.
"""

import gc
import time

from repro.cluster import Cluster
from repro.core.batching import BatchPolicy
from repro.core.serializability import TransactionPayload
from repro.scenarios import BatchSpec, ScenarioRunner, ScenarioSpec, WorkloadSpec
from repro.spec.incremental import IncrementalTCSChecker

from _helpers import write_bench_artifact


TXNS = 3_000
WAVE = 128
BATCH_SIZE = 32
ROUNDS = 4  # interleaved off/on rounds; best-of wall time per side

_artifact = {}


def _scenario_spec(batch: BatchSpec) -> ScenarioSpec:
    return ScenarioSpec(
        name="batching-guard-steady-state",
        protocol="message-passing",
        num_shards=2,
        seed=0,
        workload=WorkloadSpec(kind="uniform", txns=TXNS, batch=WAVE, num_keys=4 * TXNS),
        check_mode="online",
        batch=batch,
        max_events=50_000_000,
    )


def test_batching_message_and_event_reduction_is_deterministic(benchmark):
    def run_pair():
        off = ScenarioRunner(_scenario_spec(BatchSpec())).run()
        on = ScenarioRunner(_scenario_spec(BatchSpec(size=BATCH_SIZE))).run()
        return off, on

    off, on = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    for label, result in (("off", off), ("on", on)):
        assert result.passed and result.undecided == 0, (label, result.check_reason)
        assert result.check_mode == "online"
    message_ratio = off.messages_sent / on.messages_sent
    event_ratio = off.events_fired / on.events_fired
    print(
        f"\nbatching guard: messages {off.messages_sent} -> {on.messages_sent} "
        f"({message_ratio:.1f}x), events {off.events_fired} -> {on.events_fired} "
        f"({event_ratio:.1f}x), mean batch {on.mean_batch_size:.1f}"
    )
    assert message_ratio >= 4.0
    assert event_ratio >= 3.0
    assert on.mean_batch_size >= 5.0
    # Adaptive flush-on-idle adds zero virtual latency: the commit path is
    # byte-identical in message delays.
    assert on.latency.mean == off.latency.mean
    assert on.latency.p99 == off.latency.p99
    _artifact["deterministic"] = {
        "txns": TXNS,
        "messages_off": off.messages_sent,
        "messages_on": on.messages_sent,
        "message_ratio": message_ratio,
        "events_off": off.events_fired,
        "events_on": on.events_fired,
        "event_ratio": event_ratio,
        "mean_batch_size": on.mean_batch_size,
        "max_batch_size": on.max_batch_size,
    }
    write_bench_artifact("batching", _artifact)


def _cross_shard_payloads(cluster, n):
    """Every transaction spans both shards, so certification pays the full
    cross-shard fan-out that batching amortises."""
    first = cluster.scheme.sharding.key_for_shard(cluster.shards[0], hint="a")
    second = cluster.scheme.sharding.key_for_shard(cluster.shards[1], hint="b")
    payloads = []
    for i in range(n):
        keys = [f"{first}-{i}", f"{second}-{i}"]
        payloads.append(
            TransactionPayload.make(
                reads=[(key, (0, "")) for key in keys],
                writes=[(key, i) for key in keys],
                tiebreak=f"t{i}",
            )
        )
    return payloads


def _drive(batch: BatchPolicy, payloads) -> float:
    cluster = Cluster(num_shards=2, replicas_per_shard=2, batch=batch)
    checker = IncrementalTCSChecker(cluster.scheme, cluster.history)
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        for offset in range(0, len(payloads), WAVE):
            txns = [cluster.submit(p) for p in payloads[offset : offset + WAVE]]
            assert cluster.run_until_decided(txns)
        wall = time.perf_counter() - start
    finally:
        gc.enable()
    assert checker.ok, checker.result().reason
    return wall


def test_batched_throughput_guard(benchmark):
    # Payload keys depend only on the sharding function, so one prebuilt
    # list serves every round of both variants.
    payloads = _cross_shard_payloads(Cluster(num_shards=2, replicas_per_shard=2), TXNS)

    def run_rounds():
        best = {"off": None, "on": None}
        for _ in range(ROUNDS):
            for label, policy in (
                ("off", BatchPolicy()),
                ("on", BatchPolicy(size=BATCH_SIZE)),
            ):
                wall = _drive(policy, payloads)
                if best[label] is None or wall < best[label]:
                    best[label] = wall
        return best

    best = benchmark.pedantic(run_rounds, rounds=1, iterations=1)
    off_tps = TXNS / best["off"]
    on_tps = TXNS / best["on"]
    speedup = best["off"] / best["on"]
    print(
        f"\nbatching guard: unbatched {off_tps:,.0f} txns/s, "
        f"batched(size={BATCH_SIZE}) {on_tps:,.0f} txns/s -> {speedup:.2f}x "
        f"(target >= 2x, online checker on)"
    )
    _artifact["wall_clock"] = {
        "txns": TXNS,
        "wave": WAVE,
        "batch_size": BATCH_SIZE,
        "unbatched_txns_per_sec": off_tps,
        "batched_txns_per_sec": on_tps,
        "speedup": speedup,
    }
    write_bench_artifact("batching", _artifact)
    assert speedup >= 2.0
