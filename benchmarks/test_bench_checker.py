"""Perf guard for the online TCS checker (``check_mode="online"``).

Before the incremental checker, full history validation was O(txns^2)
(all-pairs conflict edges plus the ``real_time_pairs`` sweep) — on this
10k-transaction steady state the batch ``TCSChecker`` alone takes minutes,
which is why large scenarios used to opt out of validation entirely.  The
online checker maintains the same linearization graph incrementally
(per-object conflict indexes, a decided-frontier chain for real-time edges,
Pearce–Kelly cycle detection), so the fully *validated* run must stay within
a modest factor of the unvalidated engine floor guarded by
``test_bench_scheduler.py``.

Floor provenance: on the development container this workload measures
~2,600-3,200 txns/sec with ``check_mode="online"`` (validation overhead
~20% over the unvalidated engine; 2026-08 baseline, see ``_helpers.py``
for the measured constants and the re-baselining rule).  The guard asserts
half the worst measured baseline, which keeps headroom for slow CI
machines while failing loudly if checker updates ever reintroduce a
quadratic path.
"""

import time

from repro.scenarios import ScenarioRunner, ScenarioSpec, WorkloadSpec

from _helpers import CHECKED_TXNS_FLOOR, write_bench_artifact


TXNS = 10_000


def _spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="checker-guard-steady-state",
        protocol="message-passing",
        num_shards=4,
        seed=0,
        workload=WorkloadSpec(kind="uniform", txns=TXNS, batch=50, num_keys=2000),
        check_mode="online",
    )


def test_online_checker_throughput_guard(benchmark):
    def run():
        runner = ScenarioRunner(_spec())
        start = time.perf_counter()
        result = runner.run()
        wall = time.perf_counter() - start
        return runner, result, wall

    runner, result, wall = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.passed
    assert result.check_mode == "online"
    assert result.txns_submitted == TXNS
    # The checker actually ran: it processed every certify and decide and
    # produced a full witness linearization.
    stats = runner.checker.stats
    assert stats["events_processed"] == 2 * TXNS
    assert len(runner.checker.linearization()) == result.committed
    txns_per_sec = TXNS / wall
    print(
        f"\nonline checker guard: {TXNS} txns validated in {wall:.2f}s -> "
        f"{txns_per_sec:,.0f} txns/sec "
        f"({stats['nodes']:,} graph nodes, {stats['edges']:,} edges; "
        f"floor: {CHECKED_TXNS_FLOOR:,.0f})"
    )
    write_bench_artifact(
        "checker",
        {
            "txns": TXNS,
            "wall_seconds": wall,
            "txns_per_sec": txns_per_sec,
            "graph_nodes": stats["nodes"],
            "graph_edges": stats["edges"],
            "floor_txns_per_sec": CHECKED_TXNS_FLOOR,
        },
    )
    assert txns_per_sec >= CHECKED_TXNS_FLOOR
