"""E1 — Decision latency in message delays (Section 3).

Paper claim: the reconfigurable protocol lets a client learn the decision in
5 message delays (4 if the client is co-located with the coordinator),
versus 7 for the vanilla approach that uses Paxos as a black box.
"""

import pytest

from repro.analysis.metrics import ExperimentReport, summarize
from repro.baselines.cluster import BaselineCluster
from repro.cluster import Cluster

from conftest import multi_shard_payload, single_shard_payloads


TXNS = 12


def _run_reconfigurable(protocol: str):
    cluster = Cluster(num_shards=3, replicas_per_shard=2, protocol=protocol, seed=1)
    payloads = single_shard_payloads(cluster, TXNS)
    payloads.append(multi_shard_payload(cluster, ["shard-0", "shard-1"]))
    cluster.certify_many(payloads)
    cluster.run()
    return cluster


def _run_baseline():
    cluster = BaselineCluster(num_shards=3, failures_tolerated=1, seed=1)
    payloads = single_shard_payloads(cluster, TXNS)
    payloads.append(multi_shard_payload(cluster, ["shard-0", "shard-1"]))
    cluster.certify_many(payloads)
    cluster.run()
    return cluster


@pytest.mark.parametrize("protocol", ["message-passing", "rdma"])
def test_e1_latency_reconfigurable(benchmark, protocol):
    cluster = benchmark.pedantic(lambda: _run_reconfigurable(protocol), rounds=3, iterations=1)
    to_client = summarize(cluster.protocol_latencies())
    colocated = summarize(cluster.colocated_latencies())
    report = ExperimentReport(
        experiment=f"E1 — decision latency ({protocol})",
        claim="5 message delays to the client, 4 co-located (paper Section 3)",
        headers=["metric", "paper", "measured mean", "measured p99"],
    )
    report.add_row("client learns decision", 5, to_client.mean, to_client.p99)
    report.add_row("co-located client", 4, colocated.mean, colocated.p99)
    report.print()
    assert to_client.mean == pytest.approx(5.0)
    assert colocated.mean == pytest.approx(4.0)


def test_e1_latency_baseline(benchmark):
    cluster = benchmark.pedantic(_run_baseline, rounds=3, iterations=1)
    durable = summarize(cluster.durable_decision_latencies())
    votes = summarize(cluster.vote_latencies())
    report = ExperimentReport(
        experiment="E1 — decision latency (2PC over Paxos baseline)",
        claim="vanilla Paxos-as-black-box needs 7 delays to learn a decision",
        headers=["metric", "paper", "measured mean", "measured p99"],
    )
    report.add_row("votes known at coordinator", "-", votes.mean, votes.p99)
    report.add_row("decision durable everywhere", 7, durable.mean, durable.p99)
    report.print()
    # 7 delays for the decision to be durable on every shard, plus one more
    # for the last shard's acknowledgement to reach the coordinator.
    assert durable.mean >= 7.0
