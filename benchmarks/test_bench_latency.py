"""E1 — Decision latency in message delays (Section 3).

Paper claim: the reconfigurable protocol lets a client learn the decision in
5 message delays (4 if the client is co-located with the coordinator),
versus 7 for the vanilla approach that uses Paxos as a black box.

Both systems are driven through the scenario engine; the latency samples
come from the coordinator-side entries the clusters record.
"""

import pytest

from repro.analysis.metrics import ExperimentReport, summarize
from repro.scenarios import ScenarioRunner, ScenarioSpec, WorkloadSpec


def _spec(protocol: str) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"e1-latency-{protocol}",
        protocol=protocol,
        num_shards=3,
        replicas_per_shard=3 if protocol == "2pc-paxos" else 2,
        seed=1,
        workload=WorkloadSpec(kind="uniform", txns=24, batch=8, num_keys=96),
    )


def _run(protocol: str) -> ScenarioRunner:
    runner = ScenarioRunner(_spec(protocol))
    runner.run()
    return runner


@pytest.mark.parametrize("protocol", ["message-passing", "rdma"])
def test_e1_latency_reconfigurable(benchmark, protocol):
    runner = benchmark.pedantic(lambda: _run(protocol), rounds=3, iterations=1)
    to_client = summarize(runner.cluster.protocol_latencies())
    colocated = summarize(runner.cluster.colocated_latencies())
    report = ExperimentReport(
        experiment=f"E1 — decision latency ({protocol})",
        claim="5 message delays to the client, 4 co-located (paper Section 3)",
        headers=["metric", "paper", "measured mean", "measured p99"],
    )
    report.add_row("client learns decision", 5, to_client.mean, to_client.p99)
    report.add_row("co-located client", 4, colocated.mean, colocated.p99)
    report.print()
    assert to_client.mean == pytest.approx(5.0)
    assert colocated.mean == pytest.approx(4.0)


def test_e1_latency_baseline(benchmark):
    runner = benchmark.pedantic(lambda: _run("2pc-paxos"), rounds=3, iterations=1)
    durable = summarize(runner.cluster.durable_decision_latencies())
    votes = summarize(runner.cluster.vote_latencies())
    report = ExperimentReport(
        experiment="E1 — decision latency (2PC over Paxos baseline)",
        claim="vanilla Paxos-as-black-box needs 7 delays to learn a decision",
        headers=["metric", "paper", "measured mean", "measured p99"],
    )
    report.add_row("votes known at coordinator", "-", votes.mean, votes.p99)
    report.add_row("decision durable everywhere", 7, durable.mean, durable.p99)
    report.print()
    # 7 delays for the decision to be durable on every shard, plus one more
    # for the last shard's acknowledgement to reach the coordinator.
    assert durable.mean >= 7.0
