"""Perf guards for the resilient client-session layer.

Two costs must stay bounded for sessions to be on by default in fault
scenarios:

* **Steady-state overhead** — arming and cancelling one retry timer per
  transaction is the only work sessions add on the failure-free path.  The
  guard pins the strong property deterministically (identical event and
  message counts: cancelled timers never fire and the router reproduces the
  legacy coordinator rotation) and bounds the wall-clock overhead.  Design
  target ≤ 10%; measured 8-17% on the development container depending on
  machine load; the assertion allows ``SESSION_OVERHEAD_CEILING`` (2x the
  worst observed noise band, see ``_helpers.py``) so a noisy CI neighbour
  cannot flake a ratio of two ~1-second runs.

* **Time-to-first-decision after a coordinator crash** — a transaction
  whose request died with its coordinator must be re-decided within one
  session timeout plus the protocol's commit path, in virtual time.  This
  is exact (the simulation is deterministic), so the guard is tight.
"""

import time

from repro.scenarios import (
    FaultStep,
    RetrySpec,
    ScenarioRunner,
    ScenarioSpec,
    WorkloadSpec,
)

from _helpers import SESSION_OVERHEAD_CEILING, write_bench_artifact


TXNS = 5_000


def _steady_spec(retry: RetrySpec) -> ScenarioSpec:
    return ScenarioSpec(
        name="failover-guard-steady-state",
        protocol="message-passing",
        num_shards=4,
        seed=0,
        workload=WorkloadSpec(kind="uniform", txns=TXNS, batch=50, num_keys=2000),
        check_mode="off",
        retry=retry,
    )


def test_retry_path_steady_state_overhead(benchmark):
    # The timeout is far above the commit path, so no retry ever fires:
    # this measures the pure session bookkeeping cost.
    armed = RetrySpec(timeout=500.0, backoff=2.0, max_attempts=2)

    def run_pair():
        walls = {}
        for label, retry in (("off", RetrySpec()), ("on", armed)):
            best = None
            for _ in range(3):
                start = time.perf_counter()
                result = ScenarioRunner(_steady_spec(retry)).run()
                wall = time.perf_counter() - start
                best = wall if best is None else min(best, wall)
            walls[label] = (best, result)
        return walls

    walls = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    (off_wall, off_result) = walls["off"]
    (on_wall, on_result) = walls["on"]
    # Deterministic part: sessions in steady state change *nothing* about
    # the schedule — every timer is cancelled before firing, and the router
    # reproduces the legacy coordinator rotation.
    assert on_result.retries == 0 and on_result.orphaned == 0
    assert on_result.events_fired == off_result.events_fired
    assert on_result.messages_sent == off_result.messages_sent
    assert on_result.committed == off_result.committed
    overhead = on_wall / off_wall - 1.0
    print(
        f"\nfailover guard: steady state {TXNS} txns, sessions off {off_wall:.2f}s / "
        f"on {on_wall:.2f}s -> overhead {overhead * 100:.1f}% (target <= 10%)"
    )
    write_bench_artifact(
        "failover",
        {
            "txns": TXNS,
            "sessions_off_wall_seconds": off_wall,
            "sessions_on_wall_seconds": on_wall,
            "overhead_fraction": overhead,
            "ceiling_fraction": SESSION_OVERHEAD_CEILING,
        },
    )
    assert overhead <= SESSION_OVERHEAD_CEILING


def test_time_to_first_decision_after_coordinator_crash(benchmark):
    timeout = 30.0
    crash_at = 20.5
    spec = ScenarioSpec(
        name="failover-guard-crash",
        protocol="message-passing",
        num_shards=2,
        replicas_per_shard=3,
        seed=1,
        workload=WorkloadSpec(kind="uniform", txns=200, batch=8, num_keys=256),
        retry=RetrySpec(timeout=timeout, backoff=2.0, max_attempts=4),
        faults=(
            # A follower (coordinator for the other shard's transactions)
            # dies mid-run; its shard reconfigures past it.
            FaultStep(at=crash_at, action="crash-follower", shard="shard-0"),
            FaultStep(at=crash_at + 2.0, action="reconfigure", shard="shard-0"),
            FaultStep(at=crash_at + 80.0, action="retry-stalled"),
        ),
    )

    def run():
        runner = ScenarioRunner(spec)
        return runner, runner.run()

    runner, result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.passed
    assert result.undecided == 0 and result.orphaned == 0
    assert result.retries > 0  # the crash really orphaned in-flight requests

    # Every transaction interrupted by the crash is re-decided within one
    # session timeout plus the 5-delay commit path (plus the submit hop).
    history = runner.cluster.history
    certified = {event.txn: event.time for event in history.events if event.kind == "certify"}
    worst_gap = 0.0
    for event in history.events:
        if event.kind != "decide" or event.time <= crash_at:
            continue
        submitted = certified[event.txn]
        if submitted > crash_at:
            continue  # submitted after the crash: not an interrupted request
        worst_gap = max(worst_gap, event.time - crash_at)
    print(
        f"\nfailover guard: worst decision gap after crash {worst_gap:.1f} delays "
        f"(session timeout {timeout:g})"
    )
    assert worst_gap <= timeout + 8.0
