"""Perf guard for the non-unit latency models.

Random delay distributions defeat the ``send_many`` delivery batching that
the unit model enjoys (every fan-out destination draws its own delay, so
almost no deliveries share a scheduler event) and add one RNG draw per
message.  That overhead must stay bounded: the fully *validated*
(``check_mode="online"``) 10k-transaction steady state under the heaviest
stock model (lognormal) must clear the same validated-run floor the
checker guard uses (half the worst measured baseline; see ``_helpers.py``
for the constants and the re-baselining rule).

Floor provenance: on the development container this workload measures
~2,800-3,600 txns/sec under ``lognormal(mean=1,sigma=0.8)`` and a similar
rate for the 3-region WAN topology model — within ~15% of the unit-latency
validated run (see test_bench_checker.py), i.e. the models themselves are
cheap.  The guard also runs the WAN pack's flagship scenario at 10k
transactions with online validation, which is the acceptance bar for the
geo-distributed pack.
"""

import time
from dataclasses import replace

from repro.scenarios import (
    LatencySpec,
    ScenarioRunner,
    ScenarioSpec,
    WorkloadSpec,
    get_scenario,
)

from _helpers import CHECKED_TXNS_FLOOR

TXNS = 10_000


def _lognormal_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="latency-guard-lognormal",
        protocol="message-passing",
        num_shards=4,
        seed=0,
        latency=LatencySpec(model="lognormal", mean=1.0, sigma=0.8),
        workload=WorkloadSpec(kind="uniform", txns=TXNS, batch=50, num_keys=2000),
        check_mode="online",
    )


def test_lognormal_model_throughput_guard(benchmark):
    def run():
        start = time.perf_counter()
        result = ScenarioRunner(_lognormal_spec()).run()
        return result, time.perf_counter() - start

    result, wall = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.passed
    assert result.txns_submitted == TXNS
    assert result.undecided == 0
    assert result.latency_model == "lognormal(mean=1,sigma=0.8)"
    txns_per_sec = TXNS / wall
    print(
        f"\nlognormal latency guard: {TXNS} txns validated in {wall:.2f}s -> "
        f"{txns_per_sec:,.0f} txns/sec "
        f"(floor: {CHECKED_TXNS_FLOOR:,.0f})"
    )
    assert txns_per_sec >= CHECKED_TXNS_FLOOR


def test_wan_pack_validated_at_10k_txns(benchmark):
    """The geo-distributed pack's acceptance bar: the 3-region WAN
    steady-state runs 10k transactions with the online checker attached,
    decides everything and stays safe."""
    spec = get_scenario("wan-steady-state")
    spec = spec.with_overrides(
        workload=replace(spec.workload, txns=TXNS, batch=50, num_keys=2000)
    )

    def run():
        start = time.perf_counter()
        result = ScenarioRunner(spec).run()
        return result, time.perf_counter() - start

    result, wall = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.passed
    assert result.check_mode == "online"
    assert result.txns_submitted == TXNS
    assert result.undecided == 0
    txns_per_sec = TXNS / wall
    print(
        f"\nWAN pack 10k-txn validated run: {wall:.2f}s -> "
        f"{txns_per_sec:,.0f} txns/sec, mean latency "
        f"{result.latency.mean:.1f} delays (3-region topology)"
    )
    assert txns_per_sec >= CHECKED_TXNS_FLOOR
