"""E4 — Abort rate versus contention: RDMA versus message passing.

Paper claim (Section 5): persisting votes with RDMA "minimizes the time
during which the transaction is prepared at leaders, which requires them to
vote abort on all transactions conflicting with t ...; this results in lower
abort rates".  We drive identical Zipfian-skewed scenarios at both protocols
and compare abort rates as skew grows.
"""

import pytest

from repro.analysis.metrics import ExperimentReport
from repro.scenarios import ScenarioSpec, WorkloadSpec, run_sweep, run_scenario


def _spec(theta: float) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"e4-abort-rate-theta-{theta}",
        protocol="message-passing",
        num_shards=2,
        seed=4,
        workload=WorkloadSpec(
            kind="zipfian", txns=36, batch=6, num_keys=24, theta=theta,
            reads_per_txn=2, writes_per_txn=1,
        ),
    )


@pytest.mark.parametrize("theta", [0.0, 0.8, 1.2])
def test_e4_abort_rate_vs_contention(benchmark, theta):
    results = benchmark.pedantic(
        lambda: run_sweep(_spec(theta), ("message-passing", "rdma")),
        rounds=1,
        iterations=1,
    )
    report = ExperimentReport(
        experiment=f"E4 — abort rate (Zipf theta = {theta})",
        claim="shorter prepared window (RDMA) gives equal-or-lower abort rates; "
        "aborts grow with contention",
        headers=["protocol", "abort rate"],
    )
    for protocol, result in results.items():
        report.add_row(protocol, result.abort_rate)
        assert result.passed
    report.print()
    rates = {protocol: result.abort_rate for protocol, result in results.items()}
    assert 0.0 <= rates["rdma"] <= 1.0 and 0.0 <= rates["message-passing"] <= 1.0
    # Within the batched simulation both protocols see the same conflicts;
    # the RDMA variant must never be worse.
    assert rates["rdma"] <= rates["message-passing"] + 1e-9


def test_e4_contention_monotonicity(benchmark):
    """Abort rate grows with key skew for both protocols."""

    def sweep():
        return {
            protocol: [
                run_scenario(_spec(theta), protocol=protocol).abort_rate
                for theta in (0.0, 1.2)
            ]
            for protocol in ["message-passing", "rdma"]
        }

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report = ExperimentReport(
        experiment="E4 — abort rate sweep",
        claim="contention (skew) drives the abort rate up",
        headers=["protocol", "theta=0.0", "theta=1.2"],
    )
    for protocol, (low, high) in rates.items():
        report.add_row(protocol, low, high)
    report.print()
    for low, high in rates.values():
        assert high >= low
