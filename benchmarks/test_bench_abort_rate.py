"""E4 — Abort rate versus contention: RDMA versus message passing.

Paper claim (Section 5): persisting votes with RDMA "minimizes the time
during which the transaction is prepared at leaders, which requires them to
vote abort on all transactions conflicting with t ...; this results in lower
abort rates".  We drive identical Zipfian-skewed workloads at both protocols
and compare abort rates as skew grows.
"""

import pytest

from repro.analysis.metrics import ExperimentReport
from repro.cluster import Cluster
from repro.store.executor import TransactionalStore
from repro.workload.generators import ReadWriteWorkload, ZipfianKeyGenerator


ROUNDS = 6
BATCH = 6
NUM_KEYS = 24


def _run(protocol: str, theta: float, seed: int = 4) -> float:
    cluster = Cluster(num_shards=2, replicas_per_shard=2, protocol=protocol, seed=seed)
    keys = ZipfianKeyGenerator(num_keys=NUM_KEYS, theta=theta, seed=seed)
    workload = ReadWriteWorkload(keys, reads_per_txn=2, writes_per_txn=1, seed=seed)
    initial = {f"key-{i}": 0 for i in range(NUM_KEYS)}
    store = TransactionalStore(cluster, initial=initial)
    for _ in range(ROUNDS):
        specs = workload.batch(BATCH)
        store.run_batch([spec.body() for spec in specs])
    result, violations = cluster.check()
    assert result.ok and violations == []
    return store.aborted_count / max(1, len(store.outcomes))


@pytest.mark.parametrize("theta", [0.0, 0.8, 1.2])
def test_e4_abort_rate_vs_contention(benchmark, theta):
    rates = benchmark.pedantic(
        lambda: {p: _run(p, theta) for p in ["message-passing", "rdma"]},
        rounds=1,
        iterations=1,
    )
    report = ExperimentReport(
        experiment=f"E4 — abort rate (Zipf theta = {theta})",
        claim="shorter prepared window (RDMA) gives equal-or-lower abort rates; "
        "aborts grow with contention",
        headers=["protocol", "abort rate"],
    )
    for protocol, rate in rates.items():
        report.add_row(protocol, rate)
    report.print()
    assert 0.0 <= rates["rdma"] <= 1.0 and 0.0 <= rates["message-passing"] <= 1.0
    # Within the batched simulation both protocols see the same conflicts;
    # the RDMA variant must never be worse.
    assert rates["rdma"] <= rates["message-passing"] + 1e-9


def test_e4_contention_monotonicity(benchmark):
    """Abort rate grows with key skew for both protocols."""
    def sweep():
        return {
            protocol: [_run(protocol, theta) for theta in (0.0, 1.2)]
            for protocol in ["message-passing", "rdma"]
        }

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report = ExperimentReport(
        experiment="E4 — abort rate sweep",
        claim="contention (skew) drives the abort rate up",
        headers=["protocol", "theta=0.0", "theta=1.2"],
    )
    for protocol, (low, high) in rates.items():
        report.add_row(protocol, low, high)
    report.print()
    for low, high in rates.values():
        assert high >= low
