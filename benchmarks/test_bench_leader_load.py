"""E2 — Messages handled by shard (Paxos) leaders per transaction.

Paper claim (Section 3): the protocol "minimizes the load on Paxos leaders":
per transaction, each involved leader only receives one PREPARE and one
DECISION and sends one PREPARE_ACK (3 messages).  In the 2PC-over-Paxos
baseline the leader additionally carries the whole replication fan-out.
"""

import pytest

from repro.analysis.metrics import ExperimentReport, leader_load
from repro.baselines.cluster import BaselineCluster
from repro.cluster import Cluster

from conftest import single_shard_payloads


TXNS = 20


def _run(cluster):
    cluster.certify_many(single_shard_payloads(cluster, TXNS))
    cluster.run()
    return cluster


def _reconfigurable_leader_load(cluster):
    """Messages handled by a shard leader *in its leader role* per transaction.

    Replicas also serve as transaction coordinators, so raw per-process
    counters would mix in coordinator traffic; the paper's claim is about the
    leader role only: one PREPARE in, one PREPARE_ACK out, one DECISION in.
    """
    stats = cluster.message_stats
    per_shard_txns = TXNS / len(cluster.shards)
    leader_role_types_in = ("Prepare", "SlotDecision", "RdmaWrite")
    leader_role_types_out = ("PrepareAck", "RdmaAck")
    total = 0
    leaders = [cluster.leader_of(shard) for shard in cluster.shards]
    for leader in leaders:
        total += sum(
            stats.received_by_process_and_type[(leader, t)] for t in leader_role_types_in
        )
        total += sum(
            stats.sent_by_process_and_type[(leader, t)] for t in leader_role_types_out
        )
    return total / (per_shard_txns * len(leaders))


def _baseline_leader_load(cluster):
    leaders = [cluster.leader_of(shard) for shard in cluster.shards]
    per_shard_txns = TXNS / len(cluster.shards)
    return leader_load(cluster.message_stats, leaders, num_transactions=int(per_shard_txns))


@pytest.mark.parametrize("protocol", ["message-passing", "rdma"])
def test_e2_leader_load_reconfigurable(benchmark, protocol):
    cluster = benchmark.pedantic(
        lambda: _run(Cluster(num_shards=2, replicas_per_shard=2, protocol=protocol, seed=2)),
        rounds=3,
        iterations=1,
    )
    load = _reconfigurable_leader_load(cluster)
    report = ExperimentReport(
        experiment=f"E2 — leader load ({protocol})",
        claim="leader handles ~3 messages per transaction (PREPARE in, PREPARE_ACK out, DECISION in)",
        headers=["system", "paper", "measured msgs/txn/leader"],
    )
    report.add_row(protocol, "~3", load)
    report.print()
    assert load <= 4.5


def test_e2_leader_load_baseline(benchmark):
    cluster = benchmark.pedantic(
        lambda: _run(BaselineCluster(num_shards=2, failures_tolerated=1, seed=2)),
        rounds=3,
        iterations=1,
    )
    load = _baseline_leader_load(cluster)
    report = ExperimentReport(
        experiment="E2 — leader load (2PC over Paxos baseline)",
        claim="the baseline leader also carries the Paxos replication fan-out",
        headers=["system", "paper", "measured msgs/txn/leader"],
    )
    report.add_row("2PC over Paxos (2f+1)", ">> 3", load)
    report.print()
    assert load > 4.5


def test_e2_leader_load_comparison(benchmark):
    def run_both():
        ours = _run(Cluster(num_shards=2, replicas_per_shard=2, seed=2))
        baseline = _run(BaselineCluster(num_shards=2, failures_tolerated=1, seed=2))
        return ours, baseline

    ours, baseline = benchmark.pedantic(run_both, rounds=1, iterations=1)
    ours_load, baseline_load = _reconfigurable_leader_load(ours), _baseline_leader_load(baseline)
    report = ExperimentReport(
        experiment="E2 — leader load comparison",
        claim="the reconfigurable protocol shifts replication work from leaders to coordinators",
        headers=["system", "measured msgs/txn/leader"],
    )
    report.add_row("reconfigurable TCS (f+1)", ours_load)
    report.add_row("2PC over Paxos (2f+1)", baseline_load)
    report.print()
    assert ours_load < baseline_load
