"""E2 — Messages handled by shard (Paxos) leaders per transaction.

Paper claim (Section 3): the protocol "minimizes the load on Paxos leaders":
per transaction, each involved leader only receives one PREPARE and one
DECISION and sends one PREPARE_ACK (3 messages).  In the 2PC-over-Paxos
baseline the leader additionally carries the whole replication fan-out.

The workload is single-key transactions (each involves exactly one shard),
driven through the scenario engine.
"""

import pytest

from repro.analysis.metrics import ExperimentReport, leader_load
from repro.scenarios import ScenarioRunner, ScenarioSpec, WorkloadSpec


TXNS = 20


def _spec(protocol: str) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"e2-leader-load-{protocol}",
        protocol=protocol,
        num_shards=2,
        replicas_per_shard=3 if protocol == "2pc-paxos" else 2,
        seed=2,
        workload=WorkloadSpec(
            kind="uniform", txns=TXNS, batch=10, num_keys=64,
            reads_per_txn=1, writes_per_txn=1,
        ),
    )


def _run(protocol: str) -> ScenarioRunner:
    runner = ScenarioRunner(_spec(protocol))
    runner.run()
    return runner


def _reconfigurable_leader_load(runner) -> float:
    """Messages handled by a shard leader *in its leader role* per transaction.

    Replicas also serve as transaction coordinators, so raw per-process
    counters would mix in coordinator traffic; the paper's claim is about the
    leader role only: one PREPARE in, one PREPARE_ACK out, one DECISION in.
    Every transaction is single-key, so it involves exactly one leader.
    """
    cluster = runner.cluster
    stats = cluster.message_stats
    leader_role_types_in = ("Prepare", "SlotDecision", "RdmaWrite")
    leader_role_types_out = ("PrepareAck", "RdmaAck")
    total = 0
    for leader in (cluster.leader_of(shard) for shard in cluster.shards):
        total += sum(
            stats.received_by_process_and_type[(leader, t)] for t in leader_role_types_in
        )
        total += sum(
            stats.sent_by_process_and_type[(leader, t)] for t in leader_role_types_out
        )
    return total / TXNS


def _baseline_leader_load(runner) -> float:
    cluster = runner.cluster
    leaders = [cluster.leader_of(shard) for shard in cluster.shards]
    # leader_load normalises per leader; each single-key transaction involves
    # one of the two leaders, so feed it the per-leader transaction count.
    return leader_load(cluster.message_stats, leaders, num_transactions=TXNS // 2)


@pytest.mark.parametrize("protocol", ["message-passing", "rdma"])
def test_e2_leader_load_reconfigurable(benchmark, protocol):
    runner = benchmark.pedantic(lambda: _run(protocol), rounds=3, iterations=1)
    load = _reconfigurable_leader_load(runner)
    report = ExperimentReport(
        experiment=f"E2 — leader load ({protocol})",
        claim="leader handles ~3 messages per transaction (PREPARE in, PREPARE_ACK out, DECISION in)",
        headers=["system", "paper", "measured msgs/txn/leader"],
    )
    report.add_row(protocol, "~3", load)
    report.print()
    assert load <= 4.5


def test_e2_leader_load_baseline(benchmark):
    runner = benchmark.pedantic(lambda: _run("2pc-paxos"), rounds=3, iterations=1)
    load = _baseline_leader_load(runner)
    report = ExperimentReport(
        experiment="E2 — leader load (2PC over Paxos baseline)",
        claim="the baseline leader also carries the Paxos replication fan-out",
        headers=["system", "paper", "measured msgs/txn/leader"],
    )
    report.add_row("2PC over Paxos (2f+1)", ">> 3", load)
    report.print()
    assert load > 4.5


def test_e2_leader_load_comparison(benchmark):
    ours, baseline = benchmark.pedantic(
        lambda: (_run("message-passing"), _run("2pc-paxos")), rounds=1, iterations=1
    )
    ours_load, baseline_load = _reconfigurable_leader_load(ours), _baseline_leader_load(baseline)
    report = ExperimentReport(
        experiment="E2 — leader load comparison",
        claim="the reconfigurable protocol shifts replication work from leaders to coordinators",
        headers=["system", "measured msgs/txn/leader"],
    )
    report.add_row("reconfigurable TCS (f+1)", ours_load)
    report.add_row("2PC over Paxos (2f+1)", baseline_load)
    report.print()
    assert ours_load < baseline_load
