"""E6 — Safety ablation: the Figure 4a counter-example.

Paper claim (Section 5, Figure 4): combining the RDMA data path with
per-shard reconfiguration is unsafe — two contradictory decisions can be
externalised for the same transaction; the redesigned global reconfiguration
restores safety.  The benchmark drives the exact Figure 4a schedule at the
broken variant and at both correct protocols and reports what the TCS
checker finds.
"""

import pytest

from repro.analysis.metrics import ExperimentReport
from repro.cluster import Cluster
from repro.core.serializability import TransactionPayload

from conftest import key_on_shard


def _figure_4a(protocol: str) -> dict:
    cluster = Cluster(num_shards=3, replicas_per_shard=2, protocol=protocol, seed=51)
    key0 = key_on_shard(cluster, "shard-0")
    key1 = key_on_shard(cluster, "shard-1")
    spanning = TransactionPayload.make(
        reads=[(key0, (0, "")), (key1, (0, ""))],
        writes=[(key0, 1), (key1, 1)],
        tiebreak="t",
    )
    coordinator = cluster.members_of("shard-2")[0]
    s2_leader = cluster.leader_of("shard-1")
    s2_follower = cluster.followers_of("shard-1")[0]
    cluster.network.add_extra_delay(coordinator, s2_follower, 60.0)
    cluster.network.add_extra_delay(cluster.config_service.pid, coordinator, 500.0)

    txn = cluster.submit(spanning, coordinator=coordinator)
    cluster.run(max_time=10.0)
    cluster.crash(s2_leader)
    if protocol == "rdma":
        cluster.reconfigure(initiator=s2_follower, suspects=[s2_leader], run=False)
    else:
        cluster.reconfigure("shard-1", initiator=s2_follower, suspects=[s2_leader], run=False)
    cluster.run(max_time=40.0)
    s1_leader = cluster.replica(cluster.leader_of("shard-0"))
    if txn in s1_leader.slot_of:
        s1_leader.retry(s1_leader.slot_of[txn])
    cluster.run(max_time=600.0)

    result, _ = cluster.check(include_invariants=False)
    return {
        "contradictions": len(cluster.history.contradictions),
        "correct": result.ok,
    }


def test_e6_safety_ablation(benchmark):
    outcomes = benchmark.pedantic(
        lambda: {p: _figure_4a(p) for p in ["broken-rdma", "message-passing", "rdma"]},
        rounds=1,
        iterations=1,
    )
    report = ExperimentReport(
        experiment="E6 — Figure 4a safety ablation",
        claim="naive RDMA + per-shard reconfiguration externalises contradictory decisions; "
        "the paper's protocols do not",
        headers=["protocol", "contradictory decisions", "history correct"],
    )
    for protocol, outcome in outcomes.items():
        report.add_row(protocol, outcome["contradictions"], outcome["correct"])
    report.print()
    assert outcomes["broken-rdma"]["contradictions"] > 0
    assert not outcomes["broken-rdma"]["correct"]
    assert outcomes["message-passing"]["contradictions"] == 0
    assert outcomes["message-passing"]["correct"]
    assert outcomes["rdma"]["contradictions"] == 0
    assert outcomes["rdma"]["correct"]
