"""E6 — Safety ablation: the Figure 4a counter-example.

Paper claim (Section 5, Figure 4): combining the RDMA data path with
per-shard reconfiguration is unsafe — two contradictory decisions can be
externalised for the same transaction; the redesigned global reconfiguration
restores safety.  The ``ablation-safety-demo`` scenario encodes the exact
Figure 4a schedule; the benchmark sweeps it across the broken variant and
both correct protocols and reports what the TCS checker finds.
"""

import pytest

from repro.analysis.metrics import ExperimentReport
from repro.scenarios import get_scenario, run_scenario


PROTOCOLS = ["broken-rdma", "message-passing", "rdma"]


def _figure_4a(protocol: str):
    spec = get_scenario("ablation-safety-demo")
    return run_scenario(spec, protocol=protocol, expect_safe=(protocol != "broken-rdma"))


def test_e6_safety_ablation(benchmark):
    outcomes = benchmark.pedantic(
        lambda: {p: _figure_4a(p) for p in PROTOCOLS}, rounds=1, iterations=1
    )
    report = ExperimentReport(
        experiment="E6 — Figure 4a safety ablation",
        claim="naive RDMA + per-shard reconfiguration externalises contradictory decisions; "
        "the paper's protocols do not",
        headers=["protocol", "contradictory decisions", "history correct"],
    )
    for protocol, result in outcomes.items():
        report.add_row(protocol, result.contradictions, result.check_ok)
    report.print()
    assert outcomes["broken-rdma"].contradictions > 0
    assert not outcomes["broken-rdma"].check_ok
    assert outcomes["message-passing"].contradictions == 0
    assert outcomes["message-passing"].check_ok
    assert outcomes["rdma"].contradictions == 0
    assert outcomes["rdma"].check_ok
    assert all(result.passed for result in outcomes.values())
