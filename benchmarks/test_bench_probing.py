"""E7 — Reconfiguration liveness: probing through failed configurations.

Paper claims (Theorems 4.2-4.3 and Section 6): a reconfiguration succeeds as
long as one member of each configuration survives its lifetime, and —
unlike FaRM, which only consults the previous configuration — the probing
phase traverses *down* the sequence of epochs, so it recovers even when the
last k reconfiguration attempts never became operational.

The cluster is built by the scenario engine; the adversarial schedule (crash
each attempt's designated new leader before it activates) is interactive by
nature — it reacts to the configuration service's state — so it drives the
engine's scheduler and fault primitives directly.
"""

import pytest

from repro.analysis.metrics import ExperimentReport
from repro.core.serializability import TransactionPayload
from repro.scenarios import ScenarioRunner, ScenarioSpec, WorkloadSpec


def _spec(failed_attempts: int) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"e7-probing-{failed_attempts}-failed-attempts",
        protocol="message-passing",
        num_shards=1,
        replicas_per_shard=failed_attempts + 2,
        spares_per_shard=4 + 2 * failed_attempts,
        seed=7 + failed_attempts,
        workload=WorkloadSpec(kind="uniform", txns=1, batch=1, num_keys=8),
    )


def _run_with_failed_attempts(failed_attempts: int) -> dict:
    """Create `failed_attempts` introduced-but-never-activated epochs, then
    measure the reconfiguration that recovers past all of them.

    Every failed attempt consumes one of the shard's initialized replicas
    (its designated new leader dies before transferring state), so the shard
    starts with ``failed_attempts + 2`` replicas and the last one is the
    survivor the final reconfiguration must rediscover by traversing epochs.
    """
    runner = ScenarioRunner(_spec(failed_attempts))
    cluster = runner.build()
    shard = "shard-0"
    survivor = cluster.members_of(shard)[-1]
    payload = TransactionPayload.make(
        reads=[("base", (0, ""))], writes=[("base", 1)], tiebreak="base"
    )
    assert cluster.certify(payload).value == "commit"

    # Each failed attempt: the new configuration pairs one initialized leader
    # with fresh spares only, and that leader dies before activating it.
    for attempt in range(failed_attempts):
        current = cluster.current_configuration(shard)
        cluster.reconfigure(
            shard, initiator=survivor, suspects=list(current.members), run=False
        )
        target_epoch = current.epoch + 1

        def introduced() -> bool:
            latest = cluster.config_service.last_configuration(shard)
            if latest is not None and latest.epoch == target_epoch:
                cluster.crash(latest.leader)
                return True
            return False

        cluster.scheduler.run_until(introduced, max_events=200_000)
        cluster.run()
        # A fresh reconfiguration attempt needs the initiator's probing flag
        # cleared; the previous attempt ended when its CAS succeeded.
        cluster.replica(survivor).suspected.clear()

    # Now the survivor reconfigures; probing must walk down past every dead epoch.
    start = cluster.scheduler.now
    assert cluster.reconfigure(shard, initiator=survivor)
    recovery_time = cluster.scheduler.now - start
    config = cluster.current_configuration(shard)
    probe_rounds = failed_attempts + 1

    # The shard remembers its history: re-writing "base" at the stale version aborts.
    stale = TransactionPayload.make(
        reads=[("base", (0, ""))], writes=[("base", 2)], tiebreak="stale"
    )
    assert cluster.certify(stale).value == "abort"
    result, violations = cluster.check()
    assert result.ok and violations == []
    return {
        "final_epoch": config.epoch,
        "probe_rounds": probe_rounds,
        "recovery_time": recovery_time,
    }


@pytest.mark.parametrize("failed_attempts", [0, 1, 2])
def test_e7_probing_through_failed_reconfigurations(benchmark, failed_attempts):
    outcome = benchmark.pedantic(
        lambda: _run_with_failed_attempts(failed_attempts), rounds=1, iterations=1
    )
    report = ExperimentReport(
        experiment=f"E7 — probing with {failed_attempts} failed reconfiguration attempt(s)",
        claim="probing traverses down the epoch sequence and recovers the data "
        "(FaRM-style single-epoch lookback would get stuck for k >= 1)",
        headers=["failed attempts", "probe rounds", "recovery time (delays)", "final epoch"],
    )
    report.add_row(
        failed_attempts,
        outcome["probe_rounds"],
        outcome["recovery_time"],
        outcome["final_epoch"],
    )
    report.print()
    assert outcome["final_epoch"] == failed_attempts + 2
