"""E3 — Replication cost: f+1 versus 2f+1 replicas per shard.

Paper claim (Sections 1 and 6): the reconfigurable protocols store
transaction data on only ``f + 1`` replicas per shard, using ``2f + 1``
processes only for the small configuration service, whereas the standard
approach needs ``2f + 1`` data replicas.  We sweep ``f`` and report the data
replica count and the total data messages per committed transaction.
"""

import pytest

from repro.analysis.metrics import ExperimentReport, messages_per_transaction
from repro.baselines.cluster import BaselineCluster
from repro.cluster import Cluster

from conftest import single_shard_payloads


TXNS = 12


def _run_ours(f: int):
    cluster = Cluster(num_shards=2, replicas_per_shard=f + 1, seed=3)
    cluster.certify_many(single_shard_payloads(cluster, TXNS))
    cluster.run()
    return cluster


def _run_baseline(f: int):
    cluster = BaselineCluster(num_shards=2, failures_tolerated=f, seed=3)
    cluster.certify_many(single_shard_payloads(cluster, TXNS))
    cluster.run()
    return cluster


@pytest.mark.parametrize("f", [1, 2, 3])
def test_e3_replication_cost(benchmark, f):
    ours, baseline = benchmark.pedantic(
        lambda: (_run_ours(f), _run_baseline(f)), rounds=1, iterations=1
    )
    report = ExperimentReport(
        experiment=f"E3 — replication cost (f = {f})",
        claim="f+1 data replicas per shard instead of 2f+1",
        headers=["system", "data replicas/shard", "messages per txn"],
    )
    report.add_row(
        "reconfigurable TCS",
        ours.replicas_per_shard,
        messages_per_transaction(ours.message_stats, TXNS),
    )
    report.add_row(
        "2PC over Paxos",
        baseline.replicas_per_shard,
        messages_per_transaction(baseline.message_stats, TXNS),
    )
    report.print()
    assert ours.replicas_per_shard == f + 1
    assert baseline.replicas_per_shard == 2 * f + 1
    assert ours.replicas_per_shard < baseline.replicas_per_shard
