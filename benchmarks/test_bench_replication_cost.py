"""E3 — Replication cost: f+1 versus 2f+1 replicas per shard.

Paper claim (Sections 1 and 6): the reconfigurable protocols store
transaction data on only ``f + 1`` replicas per shard, using ``2f + 1``
processes only for the small configuration service, whereas the standard
approach needs ``2f + 1`` data replicas.  We sweep ``f`` and report the data
replica count and the total data messages per committed transaction, driving
both systems through the scenario engine.
"""

import pytest

from repro.analysis.metrics import ExperimentReport
from repro.scenarios import ScenarioRunner, ScenarioSpec, WorkloadSpec


TXNS = 12


def _spec(protocol: str, replicas_per_shard: int) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"e3-replication-{protocol}-{replicas_per_shard}",
        protocol=protocol,
        num_shards=2,
        replicas_per_shard=replicas_per_shard,
        seed=3,
        workload=WorkloadSpec(
            kind="uniform", txns=TXNS, batch=6, num_keys=64,
            reads_per_txn=1, writes_per_txn=1,
        ),
    )


@pytest.mark.parametrize("f", [1, 2, 3])
def test_e3_replication_cost(benchmark, f):
    def run_both():
        ours = ScenarioRunner(_spec("message-passing", f + 1))
        baseline = ScenarioRunner(_spec("2pc-paxos", 2 * f + 1))
        return ours.run(), baseline.run(), ours, baseline

    ours_result, baseline_result, ours, baseline = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    report = ExperimentReport(
        experiment=f"E3 — replication cost (f = {f})",
        claim="f+1 data replicas per shard instead of 2f+1",
        headers=["system", "data replicas/shard", "messages per txn"],
    )
    report.add_row(
        "reconfigurable TCS",
        ours.cluster.replicas_per_shard,
        ours_result.messages_sent / TXNS,
    )
    report.add_row(
        "2PC over Paxos",
        baseline.cluster.replicas_per_shard,
        baseline_result.messages_sent / TXNS,
    )
    report.print()
    assert ours.cluster.replicas_per_shard == f + 1
    assert baseline.cluster.replicas_per_shard == 2 * f + 1
    assert ours.cluster.replicas_per_shard < baseline.cluster.replicas_per_shard
