"""Perf guard for detector-driven failover.

The point of the heartbeat failure detector is time-to-recovery: a
suspicion-confirmed view change fires after ``threshold`` missed heartbeat
windows (6 delays at the stock 2x3 policy) while timeout-driven failover
burns at least one full session retry window (30 delays) before anybody
probes.  Both paths are measured in *virtual* time on the same crash
schedule, so the guard is exact and deterministic — no noise headroom is
needed, unlike the wall-clock guards in ``_helpers.py``.

The guard pins the ratio: detector-driven recovery must stay at least
``DETECTOR_TTR_SPEEDUP_FLOOR`` (2x) faster than the timeout-driven control.
Measured at the stock policies: 14.5 vs 35.0 delays, a 2.4x speedup.
"""

from repro.scenarios import ScenarioRunner, get_scenario

from _helpers import write_bench_artifact


DETECTOR_TTR_SPEEDUP_FLOOR = 2.0


def test_detector_failover_recovers_2x_faster_than_timeout(benchmark):
    def run_pair():
        detector = ScenarioRunner(get_scenario("detector-leader-crash")).run()
        timeout = ScenarioRunner(
            get_scenario("timeout-failover-leader-crash")
        ).run()
        return detector, timeout

    detector, timeout = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert detector.passed and timeout.passed
    assert detector.undecided == 0 and detector.orphaned == 0
    assert timeout.undecided == 0 and timeout.orphaned == 0
    assert detector.view_changes >= 1 and detector.pushed_failovers >= 1
    assert detector.recovery_times and timeout.recovery_times
    # Worst detector recovery against best timeout recovery: the guard holds
    # even under the comparison least favourable to the detector.
    detector_ttr = max(detector.recovery_times)
    timeout_ttr = min(timeout.recovery_times)
    speedup = timeout_ttr / detector_ttr
    print(
        f"\ndetector guard: crash -> reinstall {detector_ttr:.1f} delays "
        f"(detector) vs {timeout_ttr:.1f} delays (timeout-driven) "
        f"-> {speedup:.2f}x (floor {DETECTOR_TTR_SPEEDUP_FLOOR:g}x)"
    )
    write_bench_artifact(
        "detector",
        {
            "detector_recovery_delays": detector_ttr,
            "timeout_recovery_delays": timeout_ttr,
            "speedup": speedup,
            "speedup_floor": DETECTOR_TTR_SPEEDUP_FLOOR,
            "detector_suspicions": detector.suspicions,
            "detector_false_suspicions": detector.false_suspicions,
            "detector_pushed_failovers": detector.pushed_failovers,
        },
    )
    assert speedup >= DETECTOR_TTR_SPEEDUP_FLOOR
