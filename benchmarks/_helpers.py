"""Shared helpers for the benchmark harness.

The module name is deliberately not ``conftest``: pytest inserts both
``tests/`` and ``benchmarks/`` on ``sys.path`` and two modules named
``conftest`` would shadow each other.
"""

from __future__ import annotations


# The engine floor recorded before the PR 1 simulation-core refactor on the
# 10k-transaction steady-state workload (see test_bench_scheduler.py for
# provenance).  Both perf guards assert against 2x this floor; keep it in one
# place so a re-measurement cannot silently diverge between them.
PRE_REFACTOR_TXNS_PER_SEC = 235.0
PRE_REFACTOR_EVENTS_PER_SEC = 2_950.0


def key_on_shard(cluster, shard: str, hint: str = "key") -> str:
    return cluster.scheme.sharding.key_for_shard(shard, hint=hint)
