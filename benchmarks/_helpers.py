"""Shared helpers for the benchmark harness.

The module name is deliberately not ``conftest``: pytest inserts both
``tests/`` and ``benchmarks/`` on ``sys.path`` and two modules named
``conftest`` would shadow each other.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time


# ---------------------------------------------------------------------------
# Perf-guard baselines and the re-baselining rule
# ---------------------------------------------------------------------------
# Wall-clock guards assert against floors derived from a *measured baseline*:
#
#   floor = baseline / 2        (throughput guards)
#   ceiling = 2 x worst noise   (overhead-ratio guards)
#
# The 2x headroom absorbs slower CI machines and noisy neighbours while
# still catching algorithmic regressions (a returned quadratic path costs
# 10x, not 2x).  The rule for updating these numbers:
#
# * Re-measure whenever a deliberate change moves a measurement by more
#   than ~1.5x in either direction — a floor pinned far below the current
#   regime guards nothing (the previous floor here, 235 txns/s from before
#   the PR 1 engine refactor, had drifted ~13x below the measured rate and
#   would have let the engine regress by an order of magnitude unnoticed).
# * Measure on an otherwise-idle dev container, several runs, and record
#   the *worst* run — baselines encode the slow day, not the lucky one.
# * Never lower a floor to make a failing guard pass without re-measuring
#   and explaining what legitimately got slower.
#
# Baselines re-checked 2026-08 after the bandwidth/queueing network model
# landed: the default NetworkSpec is inert (messages are never sized and
# the byte counters stay untouched unless a scenario opts into a positive
# bandwidth), so the batching / read / scheduler measurements did not move
# and the floors below stand as measured.  The network model's own guards
# (knee curve, pipelining speedup) are virtual-time assertions in
# test_bench_network.py and need no wall-clock baseline.
#
# Baselines re-measured 2026-08 (10k-txn steady state, worst of repeated
# runs; see test_bench_scheduler.py / test_bench_checker.py for the exact
# workloads):
BASELINE_ENGINE_TXNS_PER_SEC = 3_000.0  # check_mode="off"
BASELINE_ENGINE_EVENTS_PER_SEC = 32_000.0
BASELINE_CHECKED_TXNS_PER_SEC = 2_600.0  # online checker on (worst model)

ENGINE_TXNS_FLOOR = BASELINE_ENGINE_TXNS_PER_SEC / 2
ENGINE_EVENTS_FLOOR = BASELINE_ENGINE_EVENTS_PER_SEC / 2
CHECKED_TXNS_FLOOR = BASELINE_CHECKED_TXNS_PER_SEC / 2

# Overhead-ratio ceiling for the client-session layer: design target 10%,
# measured 8-17% depending on machine load (a ratio of two ~1s runs is
# noise-sensitive even taking the best of three) -> ceiling at 2x the
# worst observed noise band.
SESSION_OVERHEAD_CEILING = 0.25


def key_on_shard(cluster, shard: str, hint: str = "key") -> str:
    return cluster.scheme.sharding.key_for_shard(shard, hint=hint)


def write_bench_artifact(name: str, payload: dict) -> str:
    """Persist one benchmark's measurements as ``BENCH_<name>.json``.

    Written into ``$BENCH_ARTIFACT_DIR`` (default: the working directory) so
    CI can upload every ``BENCH_*.json`` as a run artifact and performance
    can be tracked across commits instead of living only in pytest stdout.
    A ``meta`` block records when and where the numbers were taken.
    """
    directory = os.environ.get("BENCH_ARTIFACT_DIR", ".")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{name}.json")
    document = {
        "bench": name,
        "meta": {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
        "results": payload,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
