"""Shared helpers for the benchmark harness.

The module name is deliberately not ``conftest``: pytest inserts both
``tests/`` and ``benchmarks/`` on ``sys.path`` and two modules named
``conftest`` would shadow each other.
"""

from __future__ import annotations


def key_on_shard(cluster, shard: str, hint: str = "key") -> str:
    return cluster.scheme.sharding.key_for_shard(shard, hint=hint)
