"""Shared helpers for the benchmark harness.

The module name is deliberately not ``conftest``: pytest inserts both
``tests/`` and ``benchmarks/`` on ``sys.path`` and two modules named
``conftest`` would shadow each other.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time


# The engine floor recorded before the PR 1 simulation-core refactor on the
# 10k-transaction steady-state workload (see test_bench_scheduler.py for
# provenance).  Both perf guards assert against 2x this floor; keep it in one
# place so a re-measurement cannot silently diverge between them.
PRE_REFACTOR_TXNS_PER_SEC = 235.0
PRE_REFACTOR_EVENTS_PER_SEC = 2_950.0


def key_on_shard(cluster, shard: str, hint: str = "key") -> str:
    return cluster.scheme.sharding.key_for_shard(shard, hint=hint)


def write_bench_artifact(name: str, payload: dict) -> str:
    """Persist one benchmark's measurements as ``BENCH_<name>.json``.

    Written into ``$BENCH_ARTIFACT_DIR`` (default: the working directory) so
    CI can upload every ``BENCH_*.json`` as a run artifact and performance
    can be tracked across commits instead of living only in pytest stdout.
    A ``meta`` block records when and where the numbers were taken.
    """
    directory = os.environ.get("BENCH_ARTIFACT_DIR", ".")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{name}.json")
    document = {
        "bench": name,
        "meta": {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
        "results": payload,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
