"""E5 — Availability under failures: per-shard versus global reconfiguration.

Paper claims: with ``f + 1`` replicas a single failure forces the system to
stop processing (affected) transactions while it reconfigures (Section 6);
the message-passing protocol reconfigures only the affected shard, whereas
the RDMA protocol must reconfigure the whole system (Section 5) — its price
for one-sided writes.

The cluster is built (and warmed up) by the scenario engine; the
recovery-window measurement is interactive by nature — crash, reconfigure,
then immediately probe each shard with a transaction and clock when it can
commit again — so it drives the engine's fault and certify primitives
directly rather than a pre-scheduled fault script.
"""

import pytest

from repro.analysis.metrics import ExperimentReport
from repro.core.serializability import TransactionPayload
from repro.scenarios import FaultStep, ScenarioRunner, ScenarioSpec, WorkloadSpec

from _helpers import key_on_shard


def _spec(protocol: str, faults: tuple = ()) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"e5-availability-{protocol}",
        protocol=protocol,
        num_shards=2,
        seed=5,
        workload=WorkloadSpec(kind="uniform", txns=4, batch=4, num_keys=64),
        faults=faults,
    )


def _unavailability_window(protocol: str, crash_leader: bool) -> dict:
    """Crash a replica of shard-0, reconfigure, and measure the virtual time
    until each shard can commit a transaction again."""
    runner = ScenarioRunner(_spec(protocol))
    assert runner.run().passed  # warmup workload
    cluster = runner.cluster

    crashed = cluster.crash_leader("shard-0") if crash_leader else cluster.crash_follower("shard-0")
    crash_time = cluster.scheduler.now
    if protocol == "rdma":
        cluster.reconfigure(initiator=cluster.leader_of("shard-1"), suspects=[crashed])
    else:
        cluster.reconfigure("shard-0", suspects=[crashed])

    windows = {}
    for shard in cluster.shards:
        key = key_on_shard(cluster, shard, hint=f"probe-{shard}")
        payload = TransactionPayload.make(
            reads=[(key, (0, ""))], writes=[(key, 1)], tiebreak=f"probe-{shard}"
        )
        cluster.certify(payload)
        windows[shard] = cluster.scheduler.now - crash_time
    check, violations = cluster.check()
    assert check.ok and violations == []
    return windows


@pytest.mark.parametrize("crash_leader", [False, True], ids=["follower-crash", "leader-crash"])
def test_e5_unavailability_window(benchmark, crash_leader):
    windows = benchmark.pedantic(
        lambda: {p: _unavailability_window(p, crash_leader) for p in ["message-passing", "rdma"]},
        rounds=1,
        iterations=1,
    )
    report = ExperimentReport(
        experiment=f"E5 — recovery time after a {'leader' if crash_leader else 'follower'} crash",
        claim="a single failure stalls the affected shard until reconfiguration completes; "
        "RDMA reconfigures the whole system",
        headers=["protocol", "shard-0 recovery (delays)", "shard-1 recovery (delays)"],
    )
    for protocol, per_shard in windows.items():
        report.add_row(protocol, per_shard["shard-0"], per_shard["shard-1"])
    report.print()
    for per_shard in windows.values():
        assert per_shard["shard-0"] > 0
    # Global reconfiguration (RDMA) can never recover faster than the
    # per-shard protocol on the same schedule.
    assert windows["rdma"]["shard-0"] >= windows["message-passing"]["shard-0"]


def test_e5_blast_radius(benchmark):
    """How many shards observe an epoch change when one shard's replica fails.

    Here the crash/reconfigure pair is a declarative fault schedule executed
    by the scenario engine mid-workload."""

    def run():
        changed = {}
        for protocol in ["message-passing", "rdma"]:
            faults = (
                FaultStep(at=10.5, action="crash-follower", shard="shard-0"),
                FaultStep(at=11.5, action="reconfigure", shard="shard-0"),
                FaultStep(at=50.5, action="retry-stalled"),
            )
            runner = ScenarioRunner(_spec(protocol, faults=faults))
            assert runner.run().passed
            changed[protocol] = sum(
                1
                for shard in runner.cluster.shards
                if runner.cluster.current_configuration(shard).epoch > 1
            )
        return changed

    changed = benchmark.pedantic(run, rounds=1, iterations=1)
    report = ExperimentReport(
        experiment="E5 — reconfiguration blast radius",
        claim="message passing reconfigures one shard; RDMA reconfigures all (the price of RDMA)",
        headers=["protocol", "shards whose epoch changed", "total shards"],
    )
    for protocol, count in changed.items():
        report.add_row(protocol, count, 2)
    report.print()
    assert changed["message-passing"] == 1
    assert changed["rdma"] == 2
