"""Perf guards for the multi-core execution tiers.

Two claims, matching the two tiers of ``repro.runtime.parallel``:

* **Tier A (process fan-out)** — a default-grid latency sweep run with
  ``jobs=4`` must (a) return results byte-identical to the ``jobs=1`` run
  (asserted unconditionally, on every machine) and (b) finish at least
  2.5x faster on a machine with >= 4 cores.  The speedup assertion is
  skipped on smaller runners — a 1-core container cannot exhibit it, and
  pool overhead would make the guard meaningless there — but the
  measurement is always taken and written to ``BENCH_parallel.json``.

* **Tier B (parallel-DES shard groups)** — the grouped engine must replay
  the serial engine's history byte for byte (this file pins a quick case;
  the exhaustive equivalence battery lives in tests/test_parallel.py) and
  its per-run overhead on a steady-state workload must stay bounded: the
  windowed controller adds heap bookkeeping per event, not algorithmic
  cost.
"""

import json
import os
import time

from repro.analysis.metrics import SpeedupReport
from repro.scenarios import ScenarioSpec, WorkloadSpec, run_latency_sweep
from repro.scenarios.runner import ScenarioRunner
from repro.scenarios.spec import ExecSpec

from _helpers import write_bench_artifact


JOBS = 4
MIN_SPEEDUP = 2.5
TXNS = 1_500


def _spec() -> ScenarioSpec:
    # Heavy enough per grid point that pool startup amortizes; the online
    # checker stays on so workers exercise the full validated pipeline.
    return ScenarioSpec(
        name="parallel-guard-sweep",
        protocol="message-passing",
        num_shards=4,
        seed=0,
        workload=WorkloadSpec(kind="uniform", txns=TXNS, batch=50, num_keys=2000),
        check_mode="online",
    )


def test_sweep_jobs_speedup_guard(benchmark):
    def run_pair():
        start = time.perf_counter()
        serial = run_latency_sweep(_spec(), jobs=1)
        serial_wall = time.perf_counter() - start
        start = time.perf_counter()
        parallel = run_latency_sweep(_spec(), jobs=JOBS)
        parallel_wall = time.perf_counter() - start
        return serial, serial_wall, parallel, parallel_wall

    serial, serial_wall, parallel, parallel_wall = benchmark.pedantic(
        run_pair, rounds=1, iterations=1
    )

    # Byte-identity holds on any machine, whatever the worker count.
    assert json.dumps(serial.as_dict(), sort_keys=True) == json.dumps(
        parallel.as_dict(), sort_keys=True
    )

    report = SpeedupReport(
        tasks=len(serial.points),
        jobs=JOBS,
        serial_wall_seconds=serial_wall,
        parallel_wall_seconds=parallel_wall,
    )
    cores = os.cpu_count() or 1
    print(f"\nparallel sweep guard ({cores} cores): {report.render()}")
    write_bench_artifact(
        "parallel",
        {
            "sweep": {
                **report.as_dict(),
                "txns_per_point": TXNS,
                "cores": cores,
                "min_speedup": MIN_SPEEDUP,
                "speedup_asserted": cores >= JOBS,
            },
        },
    )
    # The speedup claim needs the cores to back it; the artifact records
    # the measurement either way so CI history still tracks small runners.
    if cores >= JOBS:
        assert report.speedup >= MIN_SPEEDUP


def test_parallel_shards_overhead_guard(benchmark):
    spec = ScenarioSpec(
        name="parallel-guard-shards",
        protocol="message-passing",
        num_shards=4,
        seed=0,
        workload=WorkloadSpec(kind="uniform", txns=TXNS, batch=50, num_keys=2000),
        check_mode="online",
    )
    grouped = spec.with_overrides(execution=ExecSpec(mode="parallel-shards", groups=2))

    def run_pair():
        walls = {}
        for label, s in (("serial", spec), ("grouped", grouped)):
            best = None
            for _ in range(2):
                start = time.perf_counter()
                result = ScenarioRunner(s).run()
                wall = time.perf_counter() - start
                best = wall if best is None else min(best, wall)
            walls[label] = (best, result)
        return walls

    walls = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    serial_wall, serial_result = walls["serial"]
    grouped_wall, grouped_result = walls["grouped"]

    # The strong property first: identical histories, event counts, output.
    assert grouped_result.history_digest == serial_result.history_digest
    assert json.dumps(serial_result.as_dict(), sort_keys=True) == json.dumps(
        grouped_result.as_dict(), sort_keys=True
    )

    overhead = grouped_wall / serial_wall - 1.0
    print(
        f"\nparallel-DES guard: serial {serial_wall:.2f}s, 2-group "
        f"{grouped_wall:.2f}s -> overhead {overhead * 100:.1f}%"
    )
    # The windowed controller is per-event constant work; 2x is the "it
    # went algorithmically wrong" tripwire, not a performance target.
    assert overhead <= 1.0
