"""Perf guard for the snapshot-read fast path.

Three layers, all emitted into ``BENCH_reads.json``:

* **Deterministic**: at a 90% read mix on a replication-factor-5 cluster,
  the fast path must cut messages sent by >= 4x and events fired by >= 3x
  versus certifying every read, with the online checker attached and every
  transaction decided.  A certified single-shard read pays the coordinator
  round trip, the ACCEPT/ACK fan-out and the decision replication to all
  five members; a snapshot read is two messages to the shard leader and
  back, independent of the replication factor.  Exact (seeded), so any
  regression fails regardless of machine speed.

* **Wall-clock**: on the same workload, the snapshot-read configuration
  must sustain >= 3x the txns/s of the all-certified configuration
  (best paired round measured ~3.5-3.9x on the development container).
  Each configuration is first validated once with the online checker
  attached — the timed rounds then run unchecked so the guard measures
  the protocol, not the checker.

* **Crossover**: the read-ratio curve certified-vs-snapshot on the stock
  ``read-heavy-steady-state`` topology — per point: virtual throughput,
  messages, fast-path serves.  The message savings must appear from the
  first non-zero read ratio and grow monotonically with the read mix.

Per the re-baselining rule in ``benchmarks/_helpers.py``: floors sit ~25%
under the measured dev-container ratios (ratios of interleaved runs on the
same machine are far less noise-sensitive than absolute txns/s).
"""

import gc
import random
import time

from repro.cluster import Cluster
from repro.core.reads import ReadPolicy
from repro.core.serializability import TransactionPayload, VERSION_ZERO
from repro.scenarios import ScenarioRunner, get_scenario
from repro.scenarios.spec import ReadSpec
from repro.spec.incremental import IncrementalTCSChecker

from _helpers import write_bench_artifact

TXNS = 4_000
WAVE = 128
READ_RATIO = 0.9
REPLICAS = 5  # f=4: the certified read's fan-out the fast path sidesteps
ROUNDS = 4  # certified/snapshot pairs; the guard takes the best pair ratio

_artifact = {}


def _operations():
    """The 90%-read operation mix, payloads prebuilt so the timed loop
    measures the protocol rather than payload construction.  Writes touch
    distinct keys (no aborts), reads hit a shared key pool."""
    rng = random.Random(7)
    keys = [f"key-{i}" for i in range(512)]
    operations = []
    for i in range(TXNS):
        if rng.random() < READ_RATIO:
            key = rng.choice(keys)
            operations.append(
                ("read", key, TransactionPayload.make(reads=[(key, VERSION_ZERO)], tiebreak=f"f{i}"))
            )
        else:
            key = f"wkey-{i}"
            operations.append(
                (
                    "write",
                    key,
                    TransactionPayload.make(
                        reads=[(key, VERSION_ZERO)], writes=[(key, 1)], tiebreak=f"t{i}"
                    ),
                )
            )
    return operations


_OPERATIONS = _operations()


def _drive(snapshot: bool, check: bool):
    """One full run; returns (wall seconds, messages sent, events fired)."""
    policy = ReadPolicy(mode="snapshot") if snapshot else ReadPolicy()
    cluster = Cluster(num_shards=2, replicas_per_shard=REPLICAS, seed=0, read=policy)
    checker = IncrementalTCSChecker(cluster.scheme, cluster.history) if check else None
    cluster.run()  # deliver the bootstrap lease grants before driving
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        for offset in range(0, len(_OPERATIONS), WAVE):
            txns = []
            for kind, key, payload in _OPERATIONS[offset : offset + WAVE]:
                if kind == "read" and policy.enabled:
                    txns.append(cluster.submit_read((key,), fallback_payload=payload))
                else:
                    txns.append(cluster.submit(payload))
            assert cluster.run_until_decided(txns)
        wall = time.perf_counter() - start
    finally:
        gc.enable()
    if checker is not None:
        assert checker.ok, checker.result().reason
    if snapshot:
        stats = cluster.read_stats()
        assert stats["reads_served"] > 0.9 * READ_RATIO * TXNS  # really on the fast path
    return wall, cluster.message_stats.total_sent, cluster.scheduler.events_fired


def test_read_path_message_and_event_reduction_is_deterministic(benchmark):
    def run_pair():
        certified = _drive(snapshot=False, check=True)
        fast = _drive(snapshot=True, check=True)
        return certified, fast

    certified, fast = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    message_ratio = certified[1] / fast[1]
    event_ratio = certified[2] / fast[2]
    print(
        f"\nreads guard: messages {certified[1]} -> {fast[1]} ({message_ratio:.2f}x), "
        f"events {certified[2]} -> {fast[2]} ({event_ratio:.2f}x) "
        f"at {READ_RATIO:.0%} reads, {REPLICAS} replicas/shard"
    )
    assert message_ratio >= 4.0
    assert event_ratio >= 3.0
    _artifact["deterministic"] = {
        "txns": TXNS,
        "read_ratio": READ_RATIO,
        "replicas_per_shard": REPLICAS,
        "messages_certified": certified[1],
        "messages_snapshot": fast[1],
        "message_ratio": message_ratio,
        "events_certified": certified[2],
        "events_snapshot": fast[2],
        "event_ratio": event_ratio,
    }
    write_bench_artifact("reads", _artifact)


def test_read_path_throughput_guard(benchmark):
    def run_rounds():
        # One checked validation run per configuration, outside the timing.
        _drive(snapshot=False, check=True)
        _drive(snapshot=True, check=True)
        # Paired rounds: each round runs certified then snapshot back to
        # back and the guard takes the best per-round ratio, so a noisy
        # machine epoch hits both sides of a pair instead of inflating one.
        pairs = []
        for _ in range(ROUNDS):
            certified_wall, _m, _e = _drive(snapshot=False, check=False)
            snapshot_wall, _m, _e = _drive(snapshot=True, check=False)
            pairs.append((certified_wall, snapshot_wall))
        return pairs

    pairs = benchmark.pedantic(run_rounds, rounds=1, iterations=1)
    ratios = [certified / snapshot for certified, snapshot in pairs]
    speedup = max(ratios)
    certified_wall, snapshot_wall = pairs[ratios.index(speedup)]
    certified_tps = TXNS / certified_wall
    snapshot_tps = TXNS / snapshot_wall
    print(
        f"\nreads guard: all-certified {certified_tps:,.0f} txns/s, "
        f"snapshot-read {snapshot_tps:,.0f} txns/s -> {speedup:.2f}x "
        f"(target >= 3x at {READ_RATIO:.0%} reads; "
        f"round ratios {', '.join(f'{r:.2f}' for r in ratios)})"
    )
    _artifact["wall_clock"] = {
        "txns": TXNS,
        "wave": WAVE,
        "read_ratio": READ_RATIO,
        "replicas_per_shard": REPLICAS,
        "certified_txns_per_sec": certified_tps,
        "snapshot_txns_per_sec": snapshot_tps,
        "speedup": speedup,
        "round_speedups": ratios,
    }
    write_bench_artifact("reads", _artifact)
    assert speedup >= 3.0


def test_read_ratio_crossover_curve(benchmark):
    """Where the fast path starts paying: certified vs snapshot across the
    read-ratio grid on the stock read-heavy topology."""
    from dataclasses import replace

    base = get_scenario("read-heavy-steady-state")
    ratios = (0.0, 0.25, 0.5, 0.75, 0.9)

    def run_grid():
        curve = []
        for ratio in ratios:
            point = {}
            for label, read in (("certified", ReadSpec()), ("snapshot", ReadSpec(mode="snapshot"))):
                spec = base.with_overrides(
                    workload=replace(base.workload, read_ratio=ratio), read=read
                )
                result = ScenarioRunner(spec).run()
                assert result.passed, (label, ratio, result.check_reason)
                point[label] = result
            curve.append((ratio, point))
        return curve

    curve = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    rows = []
    previous_saving = 0.0
    crossover = None
    for ratio, point in curve:
        certified, fast = point["certified"], point["snapshot"]
        saving = certified.messages_sent / fast.messages_sent
        if crossover is None and saving > 1.0:
            crossover = ratio
        rows.append(
            {
                "read_ratio": ratio,
                "certified_messages": certified.messages_sent,
                "snapshot_messages": fast.messages_sent,
                "message_saving": saving,
                "certified_throughput": certified.throughput,
                "snapshot_throughput": fast.throughput,
                "reads_served": fast.reads_served,
                "read_fallbacks": fast.read_fallbacks,
            }
        )
        # The saving must grow monotonically with the read mix.
        assert saving >= previous_saving - 1e-9, rows
        previous_saving = saving
    print("\nread-ratio crossover:")
    for row in rows:
        print(
            f"  ratio {row['read_ratio']:.2f}: messages {row['certified_messages']} -> "
            f"{row['snapshot_messages']} ({row['message_saving']:.2f}x), "
            f"{row['reads_served']} fast reads"
        )
    assert crossover is not None and crossover <= 0.25
    _artifact["crossover"] = {"curve": rows, "crossover_ratio": crossover}
    write_bench_artifact("reads", _artifact)
